//! Cross-crate property tests: random circuits through the whole stack
//! (generation → transformation → simulation → emission).

use proptest::prelude::*;
use vlsa::adders::{AdderArch, PrefixArch};
use vlsa::core::{almost_correct_adder, windowed_sum_wide};
use vlsa::sim::{adder_sums, check_adder_random, equiv_random, random_pairs};

fn any_arch() -> impl Strategy<Value = AdderArch> {
    prop_oneof![
        Just(AdderArch::Ripple),
        (2usize..8).prop_map(|b| AdderArch::CarrySkip { block: b }),
        (2usize..8).prop_map(|b| AdderArch::CarrySelect { block: b }),
        (2usize..8).prop_map(|g| AdderArch::Cla { group: g }),
        Just(AdderArch::ConditionalSum),
        proptest::sample::select(&PrefixArch::ALL[..]).prop_map(AdderArch::Prefix),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Logic optimization preserves the function of arbitrary adders
    /// while never increasing gate count.
    #[test]
    fn simplification_preserves_any_adder(
        arch in any_arch(),
        nbits in 2usize..32,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let nl = arch.generate(nbits);
        let opt = nl.simplified();
        prop_assert!(opt.gate_count() <= nl.gate_count());
        prop_assert!(opt.validate(false).is_ok());
        equiv_random(&nl, &opt, 2, &mut rng)
            .map_err(|e| TestCaseError::fail(format!("{arch}: {e}")))?;
    }

    /// Optimizing the speculative circuits preserves their function too.
    #[test]
    fn simplification_preserves_vlsa(
        nbits in 2usize..28,
        window in 1usize..28,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let window = window.min(nbits);
        let nl = vlsa::core::vlsa_adder(nbits, window);
        let opt = nl.simplified();
        equiv_random(&nl, &opt, 2, &mut rng)
            .map_err(|e| TestCaseError::fail(format!("n={} w={}: {e}", nbits, window)))?;
    }

    /// Fanout buffering preserves the function of arbitrary adders.
    #[test]
    fn buffering_preserves_any_adder(
        arch in any_arch(),
        nbits in 2usize..32,
        max_fanout in 2usize..9,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let nl = arch.generate(nbits);
        let buffered = nl.with_fanout_limit(max_fanout);
        prop_assert!(buffered.max_fanout() <= max_fanout);
        prop_assert!(buffered.validate(false).is_ok());
        equiv_random(&nl, &buffered, 2, &mut rng)
            .map_err(|e| TestCaseError::fail(format!("{arch}: {e}")))?;
    }

    /// The gate-level ACA and the software model agree at arbitrary
    /// width/window combinations.
    #[test]
    fn aca_gates_match_software_model(
        nbits in 2usize..48,
        window in 1usize..48,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let window = window.min(nbits);
        let nl = almost_correct_adder(nbits, window);
        let pairs = random_pairs(nbits, 32, &mut rng);
        let sums = adder_sums(&nl, nbits, &pairs).expect("simulate");
        for ((a, b), got) in pairs.iter().zip(&sums) {
            prop_assert_eq!(
                got.clone(),
                windowed_sum_wide(a, b, nbits, window),
                "n={} w={}", nbits, window
            );
        }
    }

    /// VLSA recovery is exact at arbitrary width/window combinations.
    #[test]
    fn vlsa_recovery_exact_anywhere(
        nbits in 2usize..40,
        window in 1usize..40,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let window = window.min(nbits);
        let nl = vlsa::core::vlsa_adder(nbits, window);
        let report = check_adder_random(&nl, nbits, 64, &mut rng).expect("simulate");
        prop_assert!(report.is_exact(), "n={} w={}: {:?}", nbits, window, report.first_failure);
    }
}
