//! `vlsa` — command-line front end for the workspace.
//!
//! ```text
//! vlsa window --bits 64 --accuracy 0.9999 [--bias 0.5]
//! vlsa gen    --arch aca --bits 64 [--window 18] [--opt] [--fanout 8]
//!             [--verilog out.v] [--vhdl out.vhd] [--dot out.dot]
//! vlsa time   --arch kogge-stone --bits 256 [--window W] [--lib tech.lib]
//! vlsa check  --arch vlsa --bits 64 --window 12 [--vectors 10000]
//! vlsa tb     --arch aca --bits 32 --window 10 --out tb.v
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use vlsa::adders::{AdderArch, PrefixArch};
use vlsa::core::{almost_correct_adder, error_detector, vlsa_adder};
use vlsa::hdl::{to_verilog, to_vhdl, verilog_testbench};
use vlsa::netlist::Netlist;
use vlsa::runstats::{min_bound_for_prob, min_bound_for_prob_biased, prob_longest_run_gt};
use vlsa::techlib::TechLibrary;
use vlsa::timing::{analyze, area};

/// Parsed `--key value` options plus the subcommand.
struct Args {
    command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let command = argv.first().cloned().ok_or("missing subcommand")?;
    let mut options = HashMap::new();
    let mut flags = Vec::new();
    let mut i = 1;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, found `{}`", argv[i]))?;
        if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
            options.insert(key.to_string(), argv[i + 1].clone());
            i += 2;
        } else {
            flags.push(key.to_string());
            i += 1;
        }
    }
    Ok(Args {
        command,
        options,
        flags,
    })
}

impl Args {
    fn usize_opt(&self, key: &str) -> Result<Option<usize>, String> {
        self.options
            .get(key)
            .map(|v| v.parse().map_err(|_| format!("--{key} expects an integer")))
            .transpose()
    }

    fn f64_opt(&self, key: &str) -> Result<Option<f64>, String> {
        self.options
            .get(key)
            .map(|v| v.parse().map_err(|_| format!("--{key} expects a number")))
            .transpose()
    }

    fn require_usize(&self, key: &str) -> Result<usize, String> {
        self.usize_opt(key)?.ok_or(format!("missing --{key}"))
    }

    fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Loads a netlist from `--load` or builds it from `--arch`/`--bits`.
fn resolve_circuit(args: &Args) -> Result<Netlist, String> {
    if let Some(path) = args.options.get("load") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        return Netlist::from_vnet(&text).map_err(|e| format!("{path}: {e}"));
    }
    let bits = args.require_usize("bits")?;
    let arch = args
        .options
        .get("arch")
        .ok_or("missing --arch (or --load)")?;
    build_circuit(arch, bits, args.usize_opt("window")?)
}

/// Resolves an architecture name (+width/window) to a netlist.
fn build_circuit(arch: &str, bits: usize, window: Option<usize>) -> Result<Netlist, String> {
    let need_window = || window.ok_or(format!("--arch {arch} requires --window"));
    let prefix = |p: PrefixArch| Ok(AdderArch::Prefix(p).generate(bits));
    match arch {
        "ripple" => Ok(AdderArch::Ripple.generate(bits)),
        "cla" => Ok(AdderArch::Cla { group: 4 }.generate(bits)),
        "carry-skip" => Ok(AdderArch::CarrySkip { block: 4 }.generate(bits)),
        "carry-select" => Ok(AdderArch::CarrySelect { block: 4 }.generate(bits)),
        "conditional-sum" => Ok(AdderArch::ConditionalSum.generate(bits)),
        "serial" => prefix(PrefixArch::Serial),
        "sklansky" => prefix(PrefixArch::Sklansky),
        "kogge-stone" => prefix(PrefixArch::KoggeStone),
        "brent-kung" => prefix(PrefixArch::BrentKung),
        "han-carlson" => prefix(PrefixArch::HanCarlson),
        "ladner-fischer" => prefix(PrefixArch::LadnerFischer),
        "aca" => Ok(almost_correct_adder(bits, need_window()?)),
        "detector" => Ok(error_detector(bits, need_window()?)),
        "vlsa" => Ok(vlsa_adder(bits, need_window()?)),
        other => Err(format!(
            "unknown --arch `{other}` (try ripple, cla, carry-skip, carry-select, \
             conditional-sum, serial, sklansky, kogge-stone, brent-kung, han-carlson, \
             ladner-fischer, aca, detector, vlsa)"
        )),
    }
}

fn load_library(args: &Args) -> Result<TechLibrary, String> {
    match args.options.get("lib") {
        None => Ok(TechLibrary::umc180()),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            TechLibrary::from_liberty(&text).map_err(|e| format!("{path}: {e}"))
        }
    }
}

fn cmd_window(args: &Args) -> Result<(), String> {
    let bits = args.require_usize("bits")?;
    let accuracy = args.f64_opt("accuracy")?.unwrap_or(0.9999);
    let window = match args.f64_opt("bias")? {
        None | Some(0.5) => min_bound_for_prob(bits, accuracy) + 1,
        Some(p) => min_bound_for_prob_biased(bits, accuracy, p) + 1,
    };
    let window = window.min(bits);
    println!("bits {bits}, accuracy {accuracy}: window = {window}");
    println!(
        "exact uniform error bound: {:.3e}",
        prob_longest_run_gt(bits, window - 1)
    );
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let mut nl = resolve_circuit(args)?;
    if args.has_flag("opt") {
        nl = nl.simplified();
    }
    if let Some(f) = args.usize_opt("fanout")? {
        nl = nl.with_fanout_limit(f);
    }
    println!("{}", nl.stats());
    let mut wrote = false;
    if let Some(path) = args.options.get("verilog") {
        std::fs::write(path, to_verilog(&nl)).map_err(|e| e.to_string())?;
        println!("wrote {path}");
        wrote = true;
    }
    if let Some(path) = args.options.get("vhdl") {
        std::fs::write(path, to_vhdl(&nl)).map_err(|e| e.to_string())?;
        println!("wrote {path}");
        wrote = true;
    }
    if let Some(path) = args.options.get("dot") {
        std::fs::write(path, nl.to_dot()).map_err(|e| e.to_string())?;
        println!("wrote {path}");
        wrote = true;
    }
    if let Some(path) = args.options.get("save") {
        std::fs::write(path, nl.to_vnet()).map_err(|e| e.to_string())?;
        println!("wrote {path}");
        wrote = true;
    }
    if !wrote {
        println!("(no output file requested; pass --verilog/--vhdl/--dot)");
    }
    Ok(())
}

fn cmd_time(args: &Args) -> Result<(), String> {
    let lib = load_library(args)?;
    let nl = resolve_circuit(args)?
        .simplified()
        .with_fanout_limit(args.usize_opt("fanout")?.unwrap_or(8));
    let timing = analyze(&nl, &lib).map_err(|e| e.to_string())?;
    let a = area(&nl, &lib).map_err(|e| e.to_string())?;
    print!("{timing}");
    print!("{a}");
    Ok(())
}

fn cmd_check(args: &Args) -> Result<(), String> {
    use rand::SeedableRng;
    let bits = args.require_usize("bits")?;
    let arch = args.options.get("arch").ok_or("missing --arch")?;
    let vectors = args.usize_opt("vectors")?.unwrap_or(10_000);
    let nl = build_circuit(arch, bits, args.usize_opt("window")?)?;
    if arch == "detector" {
        return Err("`check` compares sums; the detector has no `s` bus".into());
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(2008);
    let report =
        vlsa::sim::check_adder_random(&nl, bits, vectors, &mut rng).map_err(|e| e.to_string())?;
    println!(
        "{} / {} wrong (error rate {:.3e})",
        report.mismatches,
        report.total,
        report.error_rate()
    );
    if arch == "aca" {
        println!("(speculative adders are expected to err at the design rate)");
    } else if !report.is_exact() {
        return Err("exact architecture produced wrong sums".into());
    }
    Ok(())
}

fn cmd_tb(args: &Args) -> Result<(), String> {
    let bits = args.require_usize("bits")?;
    let arch = args.options.get("arch").ok_or("missing --arch")?;
    let out = args.options.get("out").ok_or("missing --out")?;
    let vectors = args.usize_opt("vectors")?.unwrap_or(32);
    let nl = build_circuit(arch, bits, args.usize_opt("window")?)?;
    let tb = verilog_testbench(&nl, vectors, 2008).map_err(|e| e.to_string())?;
    std::fs::write(out, format!("{}{tb}", to_verilog(&nl))).map_err(|e| e.to_string())?;
    println!("wrote {out} (dut + self-checking testbench, {vectors} vectors)");
    Ok(())
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    match args.command.as_str() {
        "window" => cmd_window(&args),
        "gen" => cmd_gen(&args),
        "time" => cmd_time(&args),
        "check" => cmd_check(&args),
        "tb" => cmd_tb(&args),
        "help" | "--help" => {
            println!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n{HELP}")),
    }
}

const HELP: &str = "\
vlsa — Variable Latency Speculative Addition toolkit
  window --bits N [--accuracy P] [--bias p]      size a speculation window
  gen    --arch A --bits N [--window W] [--opt] [--fanout F]
         [--verilog F] [--vhdl F] [--dot F] [--save F]  generate a circuit
  time   --arch A --bits N | --load F [--lib F]  timing + area report
  check  --arch A --bits N [--window W] [--vectors N]  simulate vs reference
  tb     --arch A --bits N [--window W] --out F  emit dut + testbench";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_options_and_flags() {
        let a = parse_args(&argv("gen --bits 64 --opt --arch aca")).expect("parse");
        assert_eq!(a.command, "gen");
        assert_eq!(a.require_usize("bits").unwrap(), 64);
        assert!(a.has_flag("opt"));
        assert_eq!(a.options.get("arch").map(String::as_str), Some("aca"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_args(&argv("")).is_err());
        assert!(parse_args(&argv("gen bits")).is_err());
        let a = parse_args(&argv("gen --bits banana")).expect("parse");
        assert!(a.require_usize("bits").is_err());
    }

    #[test]
    fn builds_every_architecture() {
        for arch in [
            "ripple",
            "cla",
            "carry-skip",
            "carry-select",
            "conditional-sum",
            "serial",
            "sklansky",
            "kogge-stone",
            "brent-kung",
            "han-carlson",
            "ladner-fischer",
        ] {
            assert!(build_circuit(arch, 16, None).is_ok(), "{arch}");
        }
        for arch in ["aca", "detector", "vlsa"] {
            assert!(build_circuit(arch, 16, Some(5)).is_ok(), "{arch}");
            assert!(
                build_circuit(arch, 16, None).is_err(),
                "{arch} needs window"
            );
        }
        assert!(build_circuit("bogus", 16, None).is_err());
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("vlsa_cli_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("aca.vnet");
        let path_str = path.to_str().expect("utf8 path");
        run(&argv(&format!(
            "gen --arch aca --bits 16 --window 5 --save {path_str}"
        )))
        .expect("save");
        run(&argv(&format!("time --load {path_str}"))).expect("load+time");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn window_command_runs() {
        run(&argv("window --bits 64 --accuracy 0.999")).expect("window");
        run(&argv("window --bits 64 --bias 0.7")).expect("biased window");
    }

    #[test]
    fn check_command_validates_exact_adders() {
        run(&argv("check --arch kogge-stone --bits 24 --vectors 256")).expect("check");
        // The ACA errs but `check` tolerates that for aca.
        run(&argv("check --arch aca --bits 24 --window 4 --vectors 256")).expect("aca");
        assert!(run(&argv("check --arch detector --bits 8 --window 3")).is_err());
    }

    #[test]
    fn unknown_subcommand_is_error() {
        assert!(run(&argv("frobnicate")).is_err());
        run(&argv("help")).expect("help");
    }
}
