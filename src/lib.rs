//! Umbrella crate for the VLSA workspace: re-exports the full public API
//! of the *Variable Latency Speculative Addition* (DATE 2008) reproduction.
//!
//! Most users only need this crate; the per-subsystem crates
//! ([`runstats`], [`netlist`], [`techlib`], [`sim`], [`timing`],
//! [`adders`], [`core`], [`pipeline`], [`hdl`], [`crypto`],
//! [`monitor`]) are re-exported as modules here.
//!
//! # Examples
//!
//! ```
//! use vlsa::core::SpeculativeAdder;
//!
//! let adder = SpeculativeAdder::for_accuracy(64, 0.9999)?;
//! let r = adder.add_u64(123456789, 987654321);
//! assert!(r.is_correct());
//! assert_eq!(r.exact, 123456789 + 987654321);
//! # Ok::<(), vlsa::core::SpecError>(())
//! ```

pub use vlsa_adders as adders;
pub use vlsa_core as core;
pub use vlsa_crypto as crypto;
pub use vlsa_hdl as hdl;
pub use vlsa_monitor as monitor;
pub use vlsa_multiplier as multiplier;
pub use vlsa_netlist as netlist;
pub use vlsa_pipeline as pipeline;
pub use vlsa_runstats as runstats;
pub use vlsa_seq as seq;
pub use vlsa_sim as sim;
pub use vlsa_techlib as techlib;
pub use vlsa_timing as timing;
