//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim keeps `cargo bench` working with the
//! same bench sources: each benchmark is warmed up, then timed over an
//! adaptively-sized batch, and the mean time per iteration is printed as
//! `group/name: <time>`. Statistical analysis, plots, and baselines are
//! intentionally not implemented.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(120);

/// Warm-up time per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(20);

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, f);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.label), f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, repeating it until the measurement target is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: establish a rough per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_TARGET {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();
        let batch = if per_iter.is_zero() {
            1024
        } else {
            (MEASURE_TARGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
        };
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters_done = batch;
    }

    /// Mean time per iteration of the last [`Bencher::iter`] run.
    pub fn mean_ns(&self) -> f64 {
        if self.iters_done == 0 {
            0.0
        } else {
            self.elapsed.as_nanos() as f64 / self.iters_done as f64
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let ns = bencher.mean_ns();
    let rendered = if ns >= 1_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    };
    println!(
        "{label:<48} {rendered:>12}/iter ({} iters)",
        bencher.iters_done
    );
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(21u64) * 2);
        assert!(b.iters_done > 0);
        assert!(b.mean_ns() >= 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.bench_function("trivial", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &v| {
            b.iter(|| black_box(v) * 2)
        });
        group.finish();
    }
}
