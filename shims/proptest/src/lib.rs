//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This shim keeps property tests source-compatible:
//! the [`proptest!`] macro runs each property over a deterministic
//! stream of pseudo-random inputs (seeded per test name), strategies
//! are plain uniform samplers, and failures panic with the rendered
//! message. Shrinking and persisted regression files are intentionally
//! not implemented — a failing case prints its inputs via the assert
//! message instead.

use rand::{Rng, SeedableRng};

pub use rand::rngs::StdRng as TestRng;

/// Number of cases run when a `proptest!` block sets no explicit
/// [`ProptestConfig`].
pub const DEFAULT_CASES: u32 = 64;

/// Per-block configuration (only `cases` is honoured).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Rejects the current case with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical uniform strategy, via [`any`].
pub trait Arbitrary {
    /// Draws one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_std!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f64);

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical uniform strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as $wide;
                let draw = <$wide as SampleWide>::draw(rng) % span;
                self.start + draw as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as $wide;
                if span == <$wide>::MAX {
                    return <$wide as SampleWide>::draw(rng) as $t;
                }
                let draw = <$wide as SampleWide>::draw(rng) % (span + 1);
                lo + draw as $t
            }
        }

        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.gen::<u64>() >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        (f64::from(self.start)..f64::from(self.end)).generate(rng) as f32
    }
}

/// Helper: a uniform draw wide enough for the range arithmetic.
trait SampleWide {
    fn draw(rng: &mut TestRng) -> Self;
}

impl SampleWide for u64 {
    fn draw(rng: &mut TestRng) -> u64 {
        rng.gen()
    }
}

impl SampleWide for u128 {
    fn draw(rng: &mut TestRng) -> u128 {
        rng.gen()
    }
}

impl_range_strategy!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64, u128 => u128);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};

    /// An inclusive length range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> SizeRange {
            SizeRange { min: len, max: len }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy for `Vec`s with lengths drawn from a [`SizeRange`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Generates `Vec`s of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.min == self.len.max {
                self.len.min
            } else {
                let span = (self.len.max - self.len.min) as u64 + 1;
                self.len.min + (rng.gen_range(0..span)) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{Rng, Strategy, TestRng};

    /// A strategy choosing uniformly from a fixed set.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: &[T]) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select {
            options: options.to_vec(),
        }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// An object-safe strategy, for [`prop_oneof!`].
pub trait DynStrategy<T> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A union of same-valued strategies, chosen uniformly per case.
pub struct Union<T> {
    options: Vec<Box<dyn DynStrategy<T>>>,
}

impl<T> Union<T> {
    /// Builds a union over boxed strategies.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn DynStrategy<T>>>) -> Self {
        assert!(!options.is_empty(), "union requires at least one strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len() as u64) as usize;
        self.options[i].generate_dyn(rng)
    }
}

/// Deterministic per-test RNG: every run of the same property sees the
/// same case stream.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name keeps streams distinct across tests.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// Chooses one of several strategies (all yielding the same type)
/// uniformly per generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($strategy) as Box<dyn $crate::DynStrategy<_>>),+])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body
/// runs [`ProptestConfig::cases`] times over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(
                    stringify!($name),
                    $config,
                    |__rng| {
                        $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)*
                        let mut __case = move || -> ::core::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        };
                        __case()
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

/// Drives one property over its case stream (used by [`proptest!`]).
pub fn run_property(
    name: &str,
    config: ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = test_rng(name);
    for i in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!("property `{name}` failed at case {i}/{}: {e}", config.cases);
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_any_stay_in_bounds() {
        let mut rng = super::test_rng("ranges");
        for _ in 0..200 {
            let a = Strategy::generate(&(3usize..7), &mut rng);
            assert!((3..7).contains(&a));
            let b = Strategy::generate(&(1u64..=3), &mut rng);
            assert!((1..=3).contains(&b));
            let c = Strategy::generate(&(0..u128::MAX / 2), &mut rng);
            assert!(c < u128::MAX / 2);
        }
    }

    #[test]
    fn oneof_covers_every_option() {
        let strategy = prop_oneof![Just(1u32), Just(2u32), (10u32..12).prop_map(|v| v)];
        let mut rng = super::test_rng("oneof");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(Strategy::generate(&strategy, &mut rng));
        }
        assert!(seen.contains(&1u32) && seen.contains(&2u32) && seen.contains(&10u32));
    }

    #[test]
    fn collection_and_select() {
        let mut rng = super::test_rng("vec");
        let v = Strategy::generate(&crate::collection::vec(any::<u64>(), 5), &mut rng);
        assert_eq!(v.len(), 5);
        let s = Strategy::generate(&crate::sample::select(&["a", "b"]), &mut rng);
        assert!(s == "a" || s == "b");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(a in any::<u64>(), b in 1u64..100) {
            prop_assert!((1..100).contains(&b));
            prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a, "round trip a={}", a);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_runs(x in any::<bool>()) {
            prop_assert_eq!(u8::from(x) & 1, u8::from(x));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        super::run_property("doomed", ProptestConfig::with_cases(3), |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
