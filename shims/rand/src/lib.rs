//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`Rng::gen`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`].
//!
//! The build environment has no network access and no crates.io cache,
//! so the real `rand` cannot be fetched. This shim keeps the public
//! surface source-compatible; the generator is xoshiro256++ seeded via
//! SplitMix64 — not `rand`'s ChaCha12, so seeded streams differ from
//! upstream, but every consumer in this workspace only relies on
//! deterministic, statistically-uniform streams, never on exact values.
//!
//! # Examples
//!
//! ```
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let a: u64 = rng.gen();
//! let b: u64 = rng.gen();
//! assert_ne!(a, b);
//! ```

/// Types that can be sampled uniformly from an RNG (the shim's stand-in
/// for `rand`'s `Standard` distribution).
pub trait Standard {
    /// Draws one uniform value from `rng`.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// A random number generator.
pub trait Rng {
    /// The core primitive: the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniform value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // 53 uniform mantissa bits in [0, 1): strictly below 1.0, so
        // p = 1.0 always fires and p = 0.0 never does.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * span,
        // negligible for every workspace use.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::sample_from(rng) as i128
    }
}

impl Standard for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_tuple {
    ($($name:ident),+) => {
        impl<$($name: Standard),+> Standard for ($($name,)+) {
            fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
                ($($name::sample_from(rng),)+)
            }
        }
    };
}
impl_standard_tuple!(A);
impl_standard_tuple!(A, B);
impl_standard_tuple!(A, B, C);
impl_standard_tuple!(A, B, C, D);

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_edges_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn uniform_bits_are_balanced() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ones = 0u64;
        for _ in 0..10_000 {
            ones += rng.gen::<u64>().count_ones() as u64;
        }
        let frac = ones as f64 / (10_000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "bit bias {frac}");
    }

    #[test]
    fn typed_sampling_compiles_for_all_consumers() {
        let mut rng = StdRng::seed_from_u64(9);
        let _: u8 = rng.gen();
        let _: u32 = rng.gen();
        let _: u128 = rng.gen();
        let _: bool = rng.gen();
        let _: (bool, bool) = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(2);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
